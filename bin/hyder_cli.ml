(* Command-line driver: run individual Hyder II experiments.

   Examples:
     hyder-cli cluster --servers 6 --pipeline premeld --duration 0.5
     hyder-cli local --zone-cap 256 --records 100000
     hyder-cli log --clients 6 --threads 20 --seconds 2
     hyder-cli tango --records 100000 --txns 50000
*)

open Cmdliner
module Cluster = Hyder_cluster.Cluster
module Replica = Hyder_cluster.Replica
module Faults = Hyder_sim.Faults
module Ycsb = Hyder_workload.Ycsb
module Pipeline = Hyder_core.Pipeline
module Premeld = Hyder_core.Premeld
module Runtime = Hyder_core.Runtime
module Trace = Hyder_obs.Trace
module Metrics = Hyder_obs.Metrics
module Flight = Hyder_obs.Flight
module Analyze = Hyder_obs.Analyze
module Json = Hyder_obs.Json

let write_file path content =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc content)

(* Open the flight-record sink around [f], closing it whatever happens;
   [f] receives [None] when no --flight file was asked for. *)
let with_flight_sink flight_file f =
  match flight_file with
  | None -> f None
  | Some path ->
      let oc = open_out path in
      let r =
        Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f (Some oc))
      in
      Printf.eprintf "flight records -> %s\n%!" path;
      r

let pipeline_to_string (c : Pipeline.config) =
  match (c.Pipeline.premeld, c.Pipeline.group_size) with
  | None, 1 -> "plain"
  | Some _, 1 -> "premeld"
  | None, _ -> "group"
  | Some _, _ -> "both"

let runtime_conv =
  let parse s =
    match Runtime.parse s with Ok b -> Ok b | Error m -> Error (`Msg m)
  in
  Arg.conv (parse, fun fmt b -> Format.fprintf fmt "%s" (Runtime.to_string b))

let pipeline_conv =
  let parse = function
    | "plain" -> Ok Pipeline.plain
    | "premeld" | "pre" -> Ok Pipeline.with_premeld
    | "group" | "grp" -> Ok Pipeline.with_group_meld
    | "both" | "opt" -> Ok Pipeline.with_both
    | s -> Error (`Msg (Printf.sprintf "unknown pipeline %S" s))
  in
  let print fmt c = Format.fprintf fmt "%s" (pipeline_to_string c) in
  Arg.conv (parse, print)

let isolation_conv =
  let open Hyder_codec.Intention in
  let parse = function
    | "sr" | "serializable" -> Ok Serializable
    | "si" | "snapshot" -> Ok Snapshot_isolation
    | "rc" | "read-committed" -> Ok Read_committed
    | s -> Error (`Msg (Printf.sprintf "unknown isolation %S" s))
  in
  Arg.conv (parse, fun fmt i -> Format.fprintf fmt "%s" (isolation_to_string i))

let faults_conv =
  let parse s =
    match Faults.of_string s with Ok f -> Ok f | Error m -> Error (`Msg m)
  in
  Arg.conv (parse, fun fmt f -> Format.fprintf fmt "%s" (Faults.to_string f))

let dist_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ "uniform" ] -> Ok Ycsb.Uniform
    | [ "zipfian" ] -> Ok (Ycsb.Zipfian 0.99)
    | [ "zipfian"; t ] -> Ok (Ycsb.Zipfian (float_of_string t))
    | [ "hotspot"; x ] -> Ok (Ycsb.Hotspot (float_of_string x))
    | [ "latest" ] -> Ok Ycsb.Latest
    | _ -> Error (`Msg (Printf.sprintf "unknown distribution %S" s))
  in
  Arg.conv (parse, fun fmt _ -> Format.fprintf fmt "<dist>")

(* shared workload flags *)
let records =
  Arg.(value & opt int 200_000 & info [ "records" ] ~doc:"Database size in items.")

let payload =
  Arg.(value & opt int 128 & info [ "payload" ] ~doc:"Payload bytes per item.")

let ops = Arg.(value & opt int 10 & info [ "ops" ] ~doc:"Operations per transaction.")

let updates =
  Arg.(
    value & opt float 0.2
    & info [ "updates" ] ~doc:"Fraction of a transaction's ops that write.")

let isolation =
  Arg.(
    value
    & opt isolation_conv Hyder_codec.Intention.Serializable
    & info [ "isolation" ] ~doc:"sr | si | rc")

let dist =
  Arg.(
    value & opt dist_conv Ycsb.Uniform
    & info [ "dist" ] ~doc:"uniform | zipfian[:theta] | hotspot:x | latest")

let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.")

let workload_term =
  let make records payload ops updates isolation dist =
    {
      Ycsb.default with
      Ycsb.record_count = records;
      payload_size = payload;
      ops_per_txn = ops;
      update_fraction = updates;
      isolation;
      distribution = dist;
    }
  in
  Term.(const make $ records $ payload $ ops $ updates $ isolation $ dist)

(* --- cluster ------------------------------------------------------------ *)

let cluster_cmd =
  let run_chaos servers pipeline runtime workload seed faults checkpoint_every
      chaos_txns flight_file metrics_file json_file =
    let metrics =
      if metrics_file <> None || json_file <> None then Some (Metrics.create ())
      else None
    in
    let r =
      with_flight_sink flight_file (fun flight_sink ->
          let cfg =
            {
              Replica.default_config with
              Replica.servers;
              pipeline;
              runtime;
              workload;
              faults;
              checkpoint_every;
              txns = chaos_txns;
              seed = Int64.of_int seed;
              metrics;
              flight_sink;
              flight_label = "chaos/" ^ Runtime.to_string runtime;
            }
          in
          Replica.run cfg)
    in
    Format.printf "%a@." Replica.pp r;
    (match metrics_file with
    | None -> ()
    | Some path ->
        let m = Option.get metrics in
        write_file path (Metrics.to_prometheus (Metrics.snapshot m));
        Printf.eprintf "metrics -> %s\n%!" path);
    (match json_file with
    | None -> ()
    | Some path ->
        let report =
          Json.Obj
            ([
               ("experiment", Json.String "cluster-chaos");
               ( "config",
                 Json.Obj
                   [
                     ("servers", Json.Int servers);
                     ("pipeline", Json.String (pipeline_to_string pipeline));
                     ("runtime", Json.String (Runtime.to_string runtime));
                     ("txns", Json.Int chaos_txns);
                     ("checkpoint_every", Json.Int checkpoint_every);
                     ("faults", Json.String (Faults.to_string faults));
                     ("seed", Json.Int seed);
                   ] );
               ("result", Replica.result_to_json r);
             ]
            @
            match metrics with
            | Some m -> [ ("metrics", Metrics.to_json (Metrics.snapshot m)) ]
            | None -> [])
        in
        write_file path (Json.to_string report);
        Printf.eprintf "run report -> %s\n%!" path);
    if not r.Replica.converged then exit 1
  in
  let run servers pipeline runtime adaptive write_threads read_threads inflight
      duration warmup workload seed faults checkpoint_every chaos_txns
      trace_file flight_file metrics_file json_file =
    let runtime =
      (* --adaptive flips the pipelined handoff controller on whatever
         pipe spec was given; a no-op for seq/par backends. *)
      if adaptive then
        match runtime with
        | Runtime.Pipelined p -> Runtime.Pipelined { p with adaptive = true }
        | b -> b
      else runtime
    in
    match faults with
    | Some faults ->
        (* Chaos mode: fault injection + crash recovery instead of the
           closed-loop throughput experiment. *)
        run_chaos servers pipeline runtime workload seed faults
          checkpoint_every chaos_txns flight_file metrics_file json_file
    | None ->
    with_flight_sink flight_file @@ fun flight_sink ->
    let trace =
      match trace_file with
      | None -> Trace.disabled
      | Some _ ->
          let shards =
            match pipeline.Pipeline.premeld with
            | Some c -> c.Premeld.threads
            | None -> 0
          in
          let workers =
            match runtime with
            | Runtime.Pipelined { domains; _ } -> domains
            | Runtime.Sequential | Runtime.Parallel _ -> 0
          in
          Trace.create ~shards ~workers ()
    in
    let metrics =
      if metrics_file <> None || json_file <> None then Some (Metrics.create ())
      else None
    in
    let flight =
      match flight_sink with
      | None -> Flight.disabled
      | Some oc ->
          Flight.create ~label:(Runtime.to_string runtime) ?metrics ~sink:oc ()
    in
    let cfg =
      {
        Cluster.default_config with
        Cluster.servers;
        pipeline;
        runtime;
        write_threads;
        read_threads;
        inflight_per_thread = inflight;
        duration;
        warmup;
        workload;
        seed = Int64.of_int seed;
        trace;
        flight;
        metrics;
      }
    in
    let r = Cluster.run cfg in
    Format.printf "%a@." Cluster.pp_result r;
    (match trace_file with
    | None -> ()
    | Some path ->
        write_file path (Trace.to_chrome_string trace);
        Printf.eprintf "trace: %d spans (%d dropped) -> %s\n%!"
          (Trace.recorded trace) (Trace.dropped trace) path);
    (match metrics_file with
    | None -> ()
    | Some path ->
        let m = Option.get metrics in
        write_file path (Metrics.to_prometheus (Metrics.snapshot m));
        Printf.eprintf "metrics -> %s\n%!" path);
    match json_file with
    | None -> ()
    | Some path ->
        let report =
          Json.Obj
            ([
               ("experiment", Json.String "cluster");
               ( "config",
                 Json.Obj
                   [
                     ("servers", Json.Int servers);
                     ("pipeline", Json.String (pipeline_to_string pipeline));
                     ("runtime", Json.String (Runtime.to_string runtime));
                     ("write_threads", Json.Int write_threads);
                     ("read_threads", Json.Int read_threads);
                     ("inflight_per_thread", Json.Int inflight);
                     ("duration", Json.Float duration);
                     ("warmup", Json.Float warmup);
                     ("seed", Json.Int seed);
                   ] );
               ("result", Cluster.result_to_json r);
             ]
            @
            match metrics with
            | Some m -> [ ("metrics", Metrics.to_json (Metrics.snapshot m)) ]
            | None -> [])
        in
        write_file path (Json.to_string report);
        Printf.eprintf "run report -> %s\n%!" path
  in
  let servers =
    Arg.(value & opt int 6 & info [ "servers" ] ~doc:"Transaction servers.")
  in
  let pipeline =
    Arg.(
      value & opt pipeline_conv Pipeline.plain
      & info [ "pipeline" ] ~doc:"plain | premeld | group | both")
  in
  let runtime =
    Arg.(
      value & opt runtime_conv Runtime.sequential
      & info [ "runtime" ]
          ~doc:
            "Stage runtime for the real meld pipeline: seq; par:N to run \
             premeld trial melds on N domains; or pipe:N to stage \
             deserialize/premeld/group-meld across N worker domains through \
             bounded SPSC queues, leaving only final meld on the driver \
             (identical results, measured stage times change). The pipe \
             spec also takes a handoff batch and adaptive flag: \
             pipe:N[:BATCH][:adaptive].")
  in
  let adaptive =
    Arg.(
      value & flag
      & info [ "adaptive" ]
          ~doc:
            "With a pipe:N runtime, enable the adaptive handoff controller \
             (resizes the driver's flush batch and in-flight window from \
             observed queue depths; results are bit-identical either way). \
             Shorthand for the :adaptive suffix in the runtime spec.")
  in
  let write_threads =
    Arg.(value & opt int 20 & info [ "write-threads" ] ~doc:"Update threads/server.")
  in
  let read_threads =
    Arg.(value & opt int 0 & info [ "read-threads" ] ~doc:"Read-only executors/server.")
  in
  let inflight =
    Arg.(value & opt int 80 & info [ "inflight" ] ~doc:"In-flight txns per thread.")
  in
  let duration =
    Arg.(value & opt float 0.4 & info [ "duration" ] ~doc:"Measured simulated seconds.")
  in
  let warmup =
    Arg.(value & opt float 0.15 & info [ "warmup" ] ~doc:"Warmup simulated seconds.")
  in
  let faults =
    Arg.(
      value
      & opt (some faults_conv) None
      & info [ "faults" ] ~docv:"SEED:SPEC"
          ~doc:
            "Run the chaos/recovery harness instead of the throughput \
             experiment, under the given deterministic fault schedule. \
             $(docv) is e.g. \
             1234:drop=0.02,dup=0.01@0.0004,delay=0.05@0.0008,stall=0.05@0.0005,readfail=0.2,crash=1@0.0075+0.002 \
             — per-message drop/duplicate/delay probabilities, storage \
             stalls, transient read failures and server crash/restart \
             times. The run replays a fixed workload through the cluster \
             and checks every server (including crashed-and-restarted \
             ones) converges bit-identically to a fault-free baseline; \
             exits non-zero otherwise. Ignores the closed-loop flags \
             (threads, inflight, duration, warmup, trace).")
  in
  let checkpoint_every =
    Arg.(
      value & opt int 64
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:
            "Chaos mode: capture a durable checkpoint after melding every \
             $(docv) log positions; restarted servers replay only the log \
             suffix after their last checkpoint. Must be a multiple of the \
             pipeline's group size.")
  in
  let chaos_txns =
    Arg.(
      value & opt int 600
      & info [ "chaos-txns" ] ~docv:"N"
          ~doc:"Chaos mode: transactions appended to the log.")
  in
  let trace_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace-event JSON of the real meld pipeline's \
             stage spans to $(docv) (load it in Perfetto or \
             chrome://tracing).")
  in
  let flight_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "flight" ] ~docv:"FILE"
          ~doc:
            "Record every transaction's flight (per-stage queue-wait and \
             service times from decode to commit/abort) and stream one \
             JSON line per completed record to $(docv); feed it to \
             $(b,hyder-cli analyze). Works in both the throughput and the \
             chaos experiment; off (zero-cost) when absent.")
  in
  let metrics_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:"Write Prometheus text-format metrics to $(docv).")
  in
  let json_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write a machine-readable JSON run report (config, result, \
             metrics) to $(docv).")
  in
  Cmd.v
    (Cmd.info "cluster" ~doc:"Run a distributed Hyder II experiment")
    Term.(
      const run $ servers $ pipeline $ runtime $ adaptive $ write_threads
      $ read_threads $ inflight $ duration $ warmup $ workload_term $ seed
      $ faults $ checkpoint_every $ chaos_txns $ trace_file $ flight_file
      $ metrics_file $ json_file)

(* --- analyze -------------------------------------------------------------- *)

let analyze_cmd =
  let run file top_k json_file =
    match Analyze.load_file file with
    | [] ->
        Printf.eprintf "analyze: no flight records in %s\n%!" file;
        exit 1
    | txns -> (
        Analyze.print_report ~top_k txns;
        match json_file with
        | None -> ()
        | Some path ->
            write_file path (Json.to_string (Analyze.report ~top_k txns));
            Printf.eprintf "analysis report -> %s\n%!" path)
  in
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FLIGHT.jsonl"
          ~doc:"Flight-record dump written by --flight.")
  in
  let top_k =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"K"
          ~doc:"Slowest transactions to drill into per backend.")
  in
  let json_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the machine-readable analysis report to $(docv).")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Analyze a flight-record dump: per-stage wait/service waterfall, \
          critical-path decomposition, abort-reason x stage attribution and \
          slowest-transaction drill-down, per backend label")
    Term.(const run $ file $ top_k $ json_file)

(* --- local ([8] setup) ---------------------------------------------------- *)

let local_cmd =
  let run zone_cap txns workload seed =
    let r =
      Hyder_baselines.Inmem_hyder.run ~txns ~zone_cap
        ~seed:(Int64.of_int seed) ~workload ()
    in
    Format.printf
      "in-memory meld: %.1f us/txn -> %.0f tps meld-bound; %.1f nodes/txn; \
       abort %.2f%%@."
      r.Hyder_baselines.Inmem_hyder.meld_us
      r.Hyder_baselines.Inmem_hyder.meld_bound_tps
      r.Hyder_baselines.Inmem_hyder.fm_nodes_per_txn
      (100.0 *. r.Hyder_baselines.Inmem_hyder.abort_rate)
  in
  let zone_cap =
    Arg.(value & opt int 256 & info [ "zone-cap" ] ~doc:"Max conflict zone.")
  in
  let txns = Arg.(value & opt int 20_000 & info [ "txns" ] ~doc:"Transactions.") in
  Cmd.v
    (Cmd.info "local" ~doc:"Single-node in-memory meld experiment ([8] setup)")
    Term.(const run $ zone_cap $ txns $ workload_term $ seed)

(* --- log ------------------------------------------------------------------ *)

let log_cmd =
  let run clients threads seconds block =
    let module Engine = Hyder_sim.Engine in
    let module Corfu = Hyder_log.Corfu in
    let eng = Engine.create () in
    let corfu = Corfu.create eng in
    let payload = String.make (min block 4000) 'x' in
    let rec loop () =
      if Engine.now eng < seconds then
        Corfu.append corfu payload (fun _ -> loop ())
    in
    for _ = 1 to clients * threads do
      loop ()
    done;
    Engine.run ~until:seconds eng;
    let lat = Corfu.append_latencies corfu in
    Format.printf
      "%d clients x %d threads: %.0f appends/s; latency p50=%.2fms p95=%.2fms \
       p99=%.2fms@."
      clients threads
      (float_of_int (Corfu.appends_completed corfu) /. seconds)
      (1000.0 *. Hyder_util.Stats.Sample.percentile lat 50.0)
      (1000.0 *. Hyder_util.Stats.Sample.percentile lat 95.0)
      (1000.0 *. Hyder_util.Stats.Sample.percentile lat 99.0)
  in
  let clients = Arg.(value & opt int 6 & info [ "clients" ] ~doc:"Log clients.") in
  let threads = Arg.(value & opt int 20 & info [ "threads" ] ~doc:"Threads per client.") in
  let seconds = Arg.(value & opt float 2.0 & info [ "seconds" ] ~doc:"Simulated seconds.") in
  let block = Arg.(value & opt int 8192 & info [ "block" ] ~doc:"Block size.") in
  Cmd.v
    (Cmd.info "log" ~doc:"CORFU log service benchmark (Figure 9 style)")
    Term.(const run $ clients $ threads $ seconds $ block)

(* --- tango ---------------------------------------------------------------- *)

let tango_cmd =
  let run records txns ops updates seed =
    let module Tango = Hyder_baselines.Tango in
    let writes_per_txn =
      max 1 (int_of_float (Float.round (updates *. float_of_int ops)))
    in
    let apply_us, abort_rate =
      Tango.run_workload ~seed:(Int64.of_int seed) ~records ~txns
        ~window:2_000 ~reads_per_txn:(ops - writes_per_txn) ~writes_per_txn ()
    in
    Format.printf
      "tango: apply %.2f us/txn -> %.0f tps apply-bound; abort rate %.2f%%@."
      apply_us (1e6 /. apply_us)
      (100.0 *. abort_rate)
  in
  let txns = Arg.(value & opt int 100_000 & info [ "txns" ] ~doc:"Transactions.") in
  Cmd.v
    (Cmd.info "tango" ~doc:"Tango baseline (hash index over a shared log)")
    Term.(const run $ records $ txns $ ops $ updates $ seed)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "hyder-cli" ~version:"1.0.0"
             ~doc:"Hyder II experiment driver")
          [ cluster_cmd; analyze_cmd; local_cmd; log_cmd; tango_cmd ]))
