(* Scale-out without partitioning: several servers, one shared log.

   Each server executes transactions against its own cached state and runs
   its own meld pipeline over the shared block sequence.  No server ever
   talks to another — the log's total order is the only coordination — yet
   all servers make identical commit/abort decisions and converge to
   PHYSICALLY identical states, ephemeral node identities included
   (Section 3.4 of the paper).

   Run with: dune exec examples/multi_server.exe
*)

open Hyder_tree
module Server = Hyder_core.Server
module Executor = Hyder_core.Executor
module Pipeline = Hyder_core.Pipeline
module Mem_log = Hyder_log.Mem_log
module Rng = Hyder_util.Rng

let () =
  let n_servers = 3 in
  let genesis =
    Tree.of_sorted_array
      (Array.init 500 (fun k -> (k * 2, Payload.value (Printf.sprintf "init-%d" (k * 2)))))
  in
  (* Every server runs the optimized pipeline (premeld + group meld).  At
     this toy scale the log lag is a handful of intentions, so use a small
     premeld distance; Algorithm 1 skips premeld whenever the designated
     state predates the transaction's snapshot. *)
  let config =
    {
      Pipeline.premeld =
        Some { Hyder_core.Premeld.threads = 2; distance = 1 };
      group_size = 2;
    }
  in
  let servers =
    Array.init n_servers (fun server_id ->
        Server.create ~config ~server_id ~genesis ())
  in
  let log = Mem_log.create () in
  let delivered = ref 0 in
  let outcomes = Hashtbl.create 64 in
  Array.iter
    (fun s ->
      Server.on_decision s (fun ~txn_seq outcome ->
          Hashtbl.replace outcomes (Server.server_id s, txn_seq) outcome))
    servers;

  (* Deliver all new log blocks to every server (the paper's broadcast). *)
  let pump () =
    for pos = !delivered to Mem_log.length log - 1 do
      let block = Mem_log.read log pos in
      Array.iter (fun s -> ignore (Server.observe_block s ~pos block)) servers
    done;
    delivered := Mem_log.length log
  in

  let rng = Rng.create 31337L in
  let submitted = ref 0 in
  for round = 1 to 200 do
    (* A few servers issue transactions concurrently — before any of this
       round's blocks circulate, so their snapshots genuinely race. *)
    let batch =
      List.filter_map
        (fun _ ->
          let s = servers.(Rng.int rng n_servers) in
          let _, r =
            Server.txn s (fun e ->
                let k = 2 * Rng.int rng 600 in
                ignore (Executor.read e k);
                Executor.write e k (Printf.sprintf "r%d-s%d" round (Server.server_id s)))
          in
          r)
        (List.init (1 + Rng.int rng 3) Fun.id)
    in
    List.iter
      (fun (_, blocks) ->
        incr submitted;
        List.iter (fun b -> ignore (Mem_log.append log b)) blocks)
      batch;
    (* Sometimes delay delivery so servers run ahead on stale state. *)
    if Rng.int rng 4 = 0 then pump ()
  done;
  pump ();

  (* Convergence check: all servers, one state, bit for bit. *)
  let _, pos0, s0 = Server.lcs servers.(0) in
  let all_equal =
    Array.for_all
      (fun s ->
        let _, p, t = Server.lcs s in
        p = pos0 && Tree.physically_equal s0 t)
      servers
  in
  let commits =
    Hashtbl.fold
      (fun _ o acc -> if o = Server.Committed then acc + 1 else acc)
      outcomes 0
  in
  Printf.printf "servers: %d; transactions submitted: %d\n" n_servers !submitted;
  Printf.printf "decisions delivered to issuers: %d (%d committed, %d aborted)\n"
    (Hashtbl.length outcomes) commits
    (Hashtbl.length outcomes - commits);
  Printf.printf "all servers converged to a physically identical state: %b\n"
    all_equal;
  let c = Server.counters servers.(0) in
  let pm_total = Hyder_core.Counters.premeld_total c in
  Printf.printf
    "per-server pipeline work: ds %d nodes, pm %d, gm %d, fm %d (premeld \
     moved %.0f%% of meld off the critical path)\n"
    c.Hyder_core.Counters.deserialize.Hyder_core.Counters.nodes_visited
    pm_total.Hyder_core.Counters.nodes_visited
    c.Hyder_core.Counters.group_meld.Hyder_core.Counters.nodes_visited
    c.Hyder_core.Counters.final_meld.Hyder_core.Counters.nodes_visited
    (let pm = float_of_int pm_total.Hyder_core.Counters.nodes_visited
     and fm =
       float_of_int c.Hyder_core.Counters.final_meld.Hyder_core.Counters.nodes_visited
     in
     if pm +. fm = 0.0 then 0.0 else 100.0 *. pm /. (pm +. fm))
