#!/usr/bin/env python3
"""Regression gate over BENCH_SMOKE.json.

Checks the pipeline-overlap figure's records:

  1. every backend reproduced the sequential run bit-for-bit
     (same_as_seq is true for all rows);
  2. the pipelined backend moved real work off the driver: its
     driver-executed stage time per intention (driver_critical_path) is
     strictly lower than the sequential backend's, and a non-zero share
     of decodes ran on worker domains;
  3. queue accounting is sane: every decode accounted for, peak queue
     depth within the configured capacity.

The driver-critical-path metric is deliberately wall-clock-free: it sums
the stage seconds the driver itself executed, so the gate holds even on
a loaded single-core CI box where true overlap cannot show up in elapsed
time.
"""

import json
import sys


def fail(msg: str) -> None:
    print(f"bench-smoke gate: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_SMOKE.json"
    with open(path) as f:
        report = json.load(f)

    rows = {
        r["runtime"]: r
        for r in report.get("runs", [])
        if r.get("figure") == "pipeline-overlap"
    }
    if not rows:
        fail("no pipeline-overlap rows in the report "
             "(was the figure run with --json?)")

    seq = rows.get("seq")
    pipe = next((r for name, r in rows.items() if name.startswith("pipe")), None)
    if seq is None or pipe is None:
        fail(f"need seq and pipe:<n> rows, got {sorted(rows)}")

    for name, r in sorted(rows.items()):
        if r["same_as_seq"] is not True:
            fail(f"{name}: results diverged from the sequential backend")

    seq_us = seq["stage_us"]["driver_critical_path"]
    pipe_us = pipe["stage_us"]["driver_critical_path"]
    if not pipe_us < seq_us:
        fail(f"pipelined driver critical path {pipe_us:.2f} us/intention "
             f"is not below sequential {seq_us:.2f}")

    off = pipe.get("offload")
    if not off:
        fail("pipelined row carries no offload stats")
    n = pipe["intentions"]
    if off["ds_offloaded"] <= 0:
        fail("no decodes ran on worker domains")
    if off["ds_offloaded"] + off["ds_inline"] != n:
        fail(f"decode accounting off: {off['ds_offloaded']} offloaded "
             f"+ {off['ds_inline']} inline != {n}")
    if not 0 < off["max_queue_depth"] <= off["queue_capacity"]:
        fail(f"queue depth {off['max_queue_depth']} outside "
             f"(0, {off['queue_capacity']}]")

    print(
        f"bench-smoke gate: OK: driver critical path "
        f"{seq_us:.2f} -> {pipe_us:.2f} us/intention "
        f"({100 * (1 - pipe_us / seq_us):.0f}% off the driver), "
        f"{off['ds_offloaded']}/{n} decodes on workers, "
        f"peak queue depth {off['max_queue_depth']}/{off['queue_capacity']}, "
        f"all backends bit-identical to sequential"
    )


if __name__ == "__main__":
    main()
