#!/usr/bin/env python3
"""Regression gate over BENCH_SMOKE.json.

Checks the pipeline-overlap figure's records:

  1. every backend reproduced the sequential run bit-for-bit
     (same_as_seq is true for all rows);
  2. the pipelined backend moved real work off the driver: its
     driver-executed stage time per intention (driver_critical_path) is
     strictly lower than the sequential backend's, and a non-zero share
     of decodes ran on worker domains;
  3. queue accounting is sane: every decode accounted for, peak queue
     depth within the configured capacity.

The driver-critical-path metric is deliberately wall-clock-free: it sums
the stage seconds the driver itself executed, so the gate holds even on
a loaded single-core CI box where true overlap cannot show up in elapsed
time.

With --macro, gates a BENCH_MACRO.json run instead (see `make
bench-macro`): every backend bit-identical to sequential, sane
throughput, and — when a committed baseline is given via --baseline —
no regression of the fm critical path.  The GC words/txn comparison is
tight (the fm loop's minor allocation is deterministic, measured with
the exact Gc.minor_words counter); the fm-ns/txn comparison is loose,
because wall time on a shared CI box is not.

The pipe-beats-seq gate is core-count-aware: on a machine with >= 2
cores the pipelined backend's melds/s must strictly exceed the
sequential backend's (that is the whole point of batched handoff); on
a 1-core box real overlap is physically impossible, so the gate falls
back to the wall-clock-free criterion — the pipelined driver's
critical-path stage seconds per intention must be strictly below
sequential's.  The handoff columns are gated for presence and sanity
either way: publications carry >= 1 item on average, doorbell wakeups
do not exceed items, and the driver-domain allocation bracket
(driver_minor_w_per_txn minus the driver-booked stage minors) stays
under a generous per-txn budget — batched handoff itself must not
allocate.

With --flight, sanity-checks a flight-analysis report (the JSON written
by `hyder-cli analyze --json`) instead: for every backend, records were
captured, no wait/service entry went negative, the per-record stage sums
never exceed the measured end-to-end time (the recorder's chain
invariant makes each record's sum exactly t_last - t_submit <= e2e), and
the p50 stage-sum covers the p50 end-to-end latency within 5% — i.e. the
waterfall genuinely decomposes the measured latency rather than
sampling a fraction of it.
"""

import json
import sys

# fm minor words/txn are exact and deterministic for a fixed seed; allow
# only rounding-level drift.  Promoted words are quantized to minor
# collections, so they breathe with collection timing.
GC_MINOR_TOLERANCE = 1.05
# Wall-clock metric on shared CI hardware.  The sequential row is the
# stable one; under par/pipe the driver's fm contends with worker
# domains for cores, so those rows get a much looser bound.
FM_NS_TOLERANCE_SEQ = 1.75
FM_NS_TOLERANCE_MULTI = 3.0
# The stage waterfall must account for the measured end-to-end p50; the
# chain invariant makes coverage exactly 1.0 up to clock jitter, and the
# acceptance contract allows 5%.
FLIGHT_COVERAGE_SLACK = 0.05
# Lazy-decode gates.  A row running the flyweight-view ds path must keep
# deserialization allocation under this budget (words land in the mz
# column as meld materializes, not in ds); eager reference rows are
# exempt.  The lazy sequential row must also beat the eager reference
# row, measured in the same run on the same machine so the ratios are
# hardware-independent.  Two signals, by stability:
#   - ds minor words/txn ratio: exact Gc.minor_words counters, fully
#     deterministic for a fixed seed (measured ~10x; gate at 4x);
#   - ds stage service time ratio: wall time, but both sides sampled in
#     the same process minutes apart, so load cancels to first order
#     (measured 1.4-1.7x; gate at 1.2x).
# End-to-end melds/s is NOT gated against the eager row beyond parity:
# the eager decoder spends ~70us/txn of an ~80us/txn loop, but ~half the
# lazy parse floor is cache misses binding refs/elisions against cold
# snapshot nodes — work both decoders must do — so the honest wall win
# is ~1.2-1.4x and drowns in shared-CI noise (observed 1.07-1.30 for
# identical binaries across runs).  The allocation and service-time
# ratios are what the flyweight view actually promises; the parity
# floor just catches a lazy path that got slower than eager outright.
DS_MINOR_BUDGET = 500.0
DS_ALLOC_RATIO_MIN = 4.0
DS_STAGE_SPEEDUP_MIN = 1.2
LAZY_WALL_PARITY_MIN = 0.9
# Handoff-allocation budget, in driver minor words per measured txn not
# already booked by a stage instrument (fm/ds/pm/gm/mz).  The carrier
# pool plus batched rings make the steady-state handoff itself
# allocation-free; the residual covers list/closure churn in
# submit_wire_batch's windowing, which predates this gate.  Generous on
# purpose — the signal is "handoff stopped being ~free", not noise.
HANDOFF_RESIDUAL_BUDGET = 400.0


def fail(msg: str) -> None:
    print(f"bench-smoke gate: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load_rows(path: str, figure: str) -> dict:
    with open(path) as f:
        report = json.load(f)
    return {
        r["runtime"]: r
        for r in report.get("runs", [])
        if r.get("figure") == figure
    }


def check_macro(run_path: str, baseline_path: str | None) -> None:
    rows = load_rows(run_path, "macro")
    if not rows:
        fail("no macro rows in the report (run `make bench-macro`?)")
    for want in ("seq", "par:", "pipe:"):
        if not any(name == want or name.startswith(want) for name in rows):
            fail(f"missing backend {want}* in {sorted(rows)}")

    for name, r in sorted(rows.items()):
        if r["same_as_seq"] is not True:
            fail(f"{name}: results diverged from the sequential backend")
        if not r["melds_per_s"] > 0:
            fail(f"{name}: no melds measured")
        if not r["fm_ns_per_txn"] > 0:
            fail(f"{name}: fm critical path not measured")

    # The fm loop's minor allocation per intention is backend-invariant
    # (same melds, same nodes); a spread here means the measurement or the
    # determinism contract broke.  This holds across lazy and eager rows
    # too: with group meld on, final meld always receives a combined real
    # tree, and the mz hook keeps materialization out of the fm column.
    fm_minors = {n: r["gc_words_per_txn"]["fm_minor"] for n, r in rows.items()}
    lo, hi = min(fm_minors.values()), max(fm_minors.values())
    if lo <= 0 or hi > lo * 1.01:
        fail(f"fm minor words/txn not backend-invariant: {fm_minors}")

    # Lazy-decode allocation budget: the view path must keep ds under
    # DS_MINOR_BUDGET minor words/txn (flyweight index arrays only).
    for name, r in sorted(rows.items()):
        if r.get("lazy_decode", False):
            ds = r["gc_words_per_txn"].get("ds_minor")
            if ds is None:
                fail(f"{name}: lazy row is missing the ds_minor column")
            if not ds < DS_MINOR_BUDGET:
                fail(f"{name}: ds minor words/txn {ds:.1f} not under the "
                     f"lazy-decode budget of {DS_MINOR_BUDGET:.0f}")

    msgs = []

    # ---- pipe-beats-seq (core-count-aware) + handoff sanity ----
    seq = rows["seq"]
    pipe = next((r for n, r in sorted(rows.items())
                 if n.startswith("pipe")), None)
    if pipe is None:
        fail("no pipe:<n> macro row")
    cores = pipe.get("cores", 1)
    if cores >= 2:
        if not pipe["melds_per_s"] > seq["melds_per_s"]:
            fail(f"pipe melds/s {pipe['melds_per_s']:.0f} does not beat "
                 f"seq {seq['melds_per_s']:.0f} on a {cores}-core machine")
        msgs.append(f"pipe beats seq "
                    f"{pipe['melds_per_s'] / seq['melds_per_s']:.2f}x "
                    f"melds/s ({cores} cores)")
    else:
        # 1 core: overlap cannot show in wall clock; gate the
        # wall-clock-free criterion instead (stage seconds the driver
        # itself executed).
        pipe_us = pipe["driver_critical_path_us"]
        seq_us = seq["driver_critical_path_us"]
        if not pipe_us < seq_us:
            fail(f"1-core fallback: pipe driver critical path "
                 f"{pipe_us:.2f} us/txn is not below seq {seq_us:.2f}")
        msgs.append(f"1-core box: pipe driver critical path "
                    f"{seq_us:.2f} -> {pipe_us:.2f} us/txn "
                    f"(melds/s {pipe['melds_per_s']:.0f} vs "
                    f"{seq['melds_per_s']:.0f}, not gated)")

    h = pipe.get("handoff")
    if not h:
        fail("pipelined macro row carries no handoff stats")
    if h["batches"] <= 0 or h["items"] < h["batches"]:
        fail(f"handoff accounting off: {h['batches']} publications "
             f"carrying {h['items']} items")
    # Worker parks woken <= job publications; driver parks woken <=
    # result publications (<= items).  Anything beyond that means the
    # doorbell counter double-books.
    if h["doorbell_wakeups"] > h["items"] + h["batches"]:
        fail(f"doorbell wakeups {h['doorbell_wakeups']} exceed "
             f"publications+items {h['batches']}+{h['items']}")
    if "driver_minor_w_per_txn" not in pipe:
        fail("pipelined macro row carries no driver_minor_w_per_txn")
    gcw = pipe["gc_words_per_txn"]
    booked = sum(gcw.get(k, 0.0) for k in
                 ("ds_minor", "pm_minor", "gm_minor", "fm_minor", "mz_minor"))
    residual = pipe["driver_minor_w_per_txn"] - booked
    if residual > HANDOFF_RESIDUAL_BUDGET:
        fail(f"driver handoff allocation {residual:.0f} minor words/txn "
             f"over budget ({HANDOFF_RESIDUAL_BUDGET:.0f}): "
             f"driver {pipe['driver_minor_w_per_txn']:.0f} w/txn, "
             f"stage-booked {booked:.0f}")
    msgs.append(f"handoff {h['items'] / h['batches']:.1f} items/publication, "
                f"{h['doorbell_wakeups']} doorbells, "
                f"{h['driver_steals']} steals, "
                f"residual driver alloc {residual:.0f} w/txn, "
                f"adaptive batch={h['adaptive_batch']} "
                f"window={h['adaptive_window']}")

    eager = rows.get("seq-eager")
    if eager is not None:
        seq = rows["seq"]
        seq_ds = seq["gc_words_per_txn"]["ds_minor"]
        eager_ds = eager["gc_words_per_txn"]["ds_minor"]
        alloc_ratio = eager_ds / seq_ds if seq_ds > 0 else float("inf")
        if alloc_ratio < DS_ALLOC_RATIO_MIN:
            fail(f"lazy seq ds allocation is only {alloc_ratio:.1f}x below "
                 f"the eager reference ({seq_ds:.1f} vs {eager_ds:.1f} "
                 f"minor words/txn; need >= {DS_ALLOC_RATIO_MIN}x)")
        stage_ratio = eager["stage_us"]["ds"] / seq["stage_us"]["ds"]
        if stage_ratio < DS_STAGE_SPEEDUP_MIN:
            fail(f"lazy seq ds stage is only {stage_ratio:.2f}x faster than "
                 f"the eager reference ({seq['stage_us']['ds']:.2f} vs "
                 f"{eager['stage_us']['ds']:.2f} us/txn; need "
                 f">= {DS_STAGE_SPEEDUP_MIN}x)")
        wall_ratio = seq["melds_per_s"] / eager["melds_per_s"]
        if wall_ratio < LAZY_WALL_PARITY_MIN:
            fail(f"lazy seq regressed end-to-end: {wall_ratio:.2f}x the "
                 f"eager reference ({seq['melds_per_s']:.0f} vs "
                 f"{eager['melds_per_s']:.0f} melds/s; need "
                 f">= {LAZY_WALL_PARITY_MIN}x)")
        msgs.append(f"lazy seq ds {alloc_ratio:.1f}x less allocation "
                    f"({seq_ds:.0f} vs {eager_ds:.0f} w/txn), "
                    f"{stage_ratio:.2f}x faster ds stage, "
                    f"{wall_ratio:.2f}x melds/s")
    if baseline_path is not None:
        base = load_rows(baseline_path, "macro")
        for name, r in sorted(rows.items()):
            b = base.get(name)
            if b is None:
                continue
            cur_gc = r["gc_words_per_txn"]["fm_minor"]
            base_gc = b["gc_words_per_txn"]["fm_minor"]
            if cur_gc > base_gc * GC_MINOR_TOLERANCE:
                fail(f"{name}: fm minor words/txn regressed "
                     f"{base_gc:.1f} -> {cur_gc:.1f} "
                     f"(tolerance x{GC_MINOR_TOLERANCE})")
            cur_ns = r["fm_ns_per_txn"]
            base_ns = b["fm_ns_per_txn"]
            tol = FM_NS_TOLERANCE_SEQ if name == "seq" else FM_NS_TOLERANCE_MULTI
            if cur_ns > base_ns * tol:
                fail(f"{name}: fm ns/txn regressed "
                     f"{base_ns:.0f} -> {cur_ns:.0f} "
                     f"(tolerance x{tol})")
            msgs.append(f"{name} fm {cur_ns:.0f}ns/txn "
                        f"(base {base_ns:.0f}) {cur_gc:.1f}w/txn "
                        f"(base {base_gc:.1f})")
    else:
        msgs += [f"{n} fm {r['fm_ns_per_txn']:.0f}ns/txn "
                 f"{r['gc_words_per_txn']['fm_minor']:.1f}w/txn"
                 for n, r in sorted(rows.items())]

    print("bench-macro gate: OK: all backends bit-identical to sequential; "
          + "; ".join(msgs))


def check_flight(report_path: str) -> None:
    with open(report_path) as f:
        report = json.load(f)
    backends = report.get("backends", [])
    if not backends:
        fail("no backends in the flight report (empty --flight dump?)")

    msgs = []
    for b in backends:
        label = b.get("label") or "(unlabeled)"
        if b["txns"] <= 0:
            fail(f"{label}: no flight records")
        if b["negative_waits"] != 0:
            fail(f"{label}: {b['negative_waits']} negative wait/service "
                 "entries (the chain invariant broke)")
        # Attributed stage time can never exceed measured end-to-end time:
        # per record the sum is t_last - t_submit <= t_done - t_submit.
        # Aggregate totals, with a hair of float slack.
        attr_us = sum(s["wait_total_us"] + s["service_total_us"]
                      for s in b["stages"])
        e2e_total_us = b["e2e_us"]["mean"] * b["txns"]
        if attr_us > e2e_total_us * 1.001:
            fail(f"{label}: attributed stage time {attr_us:.0f}us exceeds "
                 f"total end-to-end time {e2e_total_us:.0f}us")
        cov = b["coverage_p50"]
        lo, hi = 1 - FLIGHT_COVERAGE_SLACK, 1 + FLIGHT_COVERAGE_SLACK
        if not lo <= cov <= hi:
            fail(f"{label}: stage-sum p50 covers only {cov:.3f} of the "
                 f"end-to-end p50 (need within [{lo:.2f}, {hi:.2f}])")
        msgs.append(f"{label} {b['txns']} txns, e2e p50 "
                    f"{b['e2e_us']['p50']:.1f}us, coverage {cov:.3f}, "
                    f"critical path {b['critical_path']['stage']}")

    print("flight gate: OK: " + "; ".join(msgs))


def main() -> None:
    argv = sys.argv[1:]
    if argv and argv[0] == "--macro":
        if len(argv) < 2:
            fail("usage: check_bench_smoke.py --macro RUN.json [BASELINE.json]")
        check_macro(argv[1], argv[2] if len(argv) > 2 else None)
        return
    if argv and argv[0] == "--flight":
        if len(argv) < 2:
            fail("usage: check_bench_smoke.py --flight REPORT.json")
        check_flight(argv[1])
        return

    path = argv[0] if argv else "BENCH_SMOKE.json"
    with open(path) as f:
        report = json.load(f)

    rows = {
        r["runtime"]: r
        for r in report.get("runs", [])
        if r.get("figure") == "pipeline-overlap"
    }
    if not rows:
        fail("no pipeline-overlap rows in the report "
             "(was the figure run with --json?)")

    seq = rows.get("seq")
    pipe = next((r for name, r in rows.items() if name.startswith("pipe")), None)
    if seq is None or pipe is None:
        fail(f"need seq and pipe:<n> rows, got {sorted(rows)}")

    for name, r in sorted(rows.items()):
        if r["same_as_seq"] is not True:
            fail(f"{name}: results diverged from the sequential backend")

    seq_us = seq["stage_us"]["driver_critical_path"]
    pipe_us = pipe["stage_us"]["driver_critical_path"]
    if not pipe_us < seq_us:
        fail(f"pipelined driver critical path {pipe_us:.2f} us/intention "
             f"is not below sequential {seq_us:.2f}")

    off = pipe.get("offload")
    if not off:
        fail("pipelined row carries no offload stats")
    n = pipe["intentions"]
    if off["ds_offloaded"] <= 0:
        fail("no decodes ran on worker domains")
    if off["ds_offloaded"] + off["ds_inline"] != n:
        fail(f"decode accounting off: {off['ds_offloaded']} offloaded "
             f"+ {off['ds_inline']} inline != {n}")
    if not 0 < off["max_queue_depth"] <= off["queue_capacity"]:
        fail(f"queue depth {off['max_queue_depth']} outside "
             f"(0, {off['queue_capacity']}]")
    if "handoff_batches" in off:
        if off["handoff_batches"] <= 0:
            fail("no batched job publications recorded")
        if off["handoff_items"] < off["handoff_batches"]:
            fail(f"handoff accounting off: {off['handoff_batches']} "
                 f"publications carrying {off['handoff_items']} items")

    batching = (f", {off['handoff_items'] / off['handoff_batches']:.1f} "
                f"items/publication, {off['doorbell_wakeups']} doorbells"
                if off.get("handoff_batches") else "")
    print(
        f"bench-smoke gate: OK: driver critical path "
        f"{seq_us:.2f} -> {pipe_us:.2f} us/intention "
        f"({100 * (1 - pipe_us / seq_us):.0f}% off the driver), "
        f"{off['ds_offloaded']}/{n} decodes on workers, "
        f"peak queue depth {off['max_queue_depth']}/{off['queue_capacity']}"
        f"{batching}, all backends bit-identical to sequential"
    )


if __name__ == "__main__":
    main()
